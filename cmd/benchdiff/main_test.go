package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// mips builds a benchSamples from sim-MIPS values alone.
func mips(xs ...float64) *benchSamples { return &benchSamples{simMIPS: xs} }

func TestCompareTwoSided(t *testing.T) {
	base := map[string]*benchSamples{"BenchmarkSimW4": mips(100, 110), "BenchmarkSimW8": mips(200)}
	cur := map[string]*benchSamples{"BenchmarkSimW4": mips(104), "BenchmarkSimW8": mips(150)}
	var sb strings.Builder
	if failed := compare(&sb, base, cur, 10); !failed {
		t.Fatalf("25%% drop on SimW8 must fail the 10%% gate:\n%s", sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "REGRESSION") {
		t.Fatalf("regressed row must be marked:\n%s", out)
	}
	if strings.Count(out, "REGRESSION") != 1 {
		t.Fatalf("only SimW8 regressed:\n%s", out)
	}
}

func TestCompareOneSidedNeverRegresses(t *testing.T) {
	// A benchmark missing from either side must print as new/removed and
	// must not trip the gate — this was the false-regression bug.
	base := map[string]*benchSamples{"BenchmarkSimOld": mips(100), "BenchmarkSimBoth": mips(50)}
	cur := map[string]*benchSamples{"BenchmarkSimNew": mips(1), "BenchmarkSimBoth": mips(50)}
	var sb strings.Builder
	if failed := compare(&sb, base, cur, 10); failed {
		t.Fatalf("one-sided benchmarks must not fail the gate:\n%s", sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "removed") {
		t.Fatalf("baseline-only benchmark must print as removed:\n%s", out)
	}
	if !strings.Contains(out, "new") {
		t.Fatalf("current-only benchmark must print as new:\n%s", out)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	base := map[string]*benchSamples{"BenchmarkSimZ": mips(0)}
	cur := map[string]*benchSamples{"BenchmarkSimZ": mips(10)}
	var sb strings.Builder
	if failed := compare(&sb, base, cur, 10); failed {
		t.Fatalf("zero baseline mean must be skipped, not divided:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "no-base") {
		t.Fatalf("zero baseline must print as no-base:\n%s", sb.String())
	}
}

func TestCompareDeterministicOrder(t *testing.T) {
	base := map[string]*benchSamples{"BenchmarkB": mips(1), "BenchmarkD": mips(1)}
	cur := map[string]*benchSamples{"BenchmarkA": mips(1), "BenchmarkC": mips(1), "BenchmarkB": mips(1)}
	var sb strings.Builder
	compare(&sb, base, cur, 10)
	out := sb.String()
	order := []string{"BenchmarkA", "BenchmarkB", "BenchmarkC", "BenchmarkD"}
	last := -1
	for _, n := range order {
		i := strings.Index(out, n)
		if i < 0 {
			t.Fatalf("%s missing from table:\n%s", n, out)
		}
		if i < last {
			t.Fatalf("rows must sort over the union of names:\n%s", out)
		}
		last = i
	}
}

func TestParseBench(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.txt")
	text := `goos: linux
BenchmarkSimW4-8   	      10	 104042625 ns/op	        12.50 sim-MIPS	       0 B/op	     163 allocs/op
BenchmarkSimW4-8   	      10	 100042625 ns/op	        13.50 sim-MIPS	       0 B/op	     165 allocs/op
BenchmarkSimW8-8   	       5	 204042625 ns/op	         7.25 sim-MIPS
BenchmarkNoMetric-8	      10	 104042625 ns/op	       0 B/op	     999 allocs/op
PASS
`
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 benchmarks with sim-MIPS, got %v", got)
	}
	if s := got["BenchmarkSimW4"]; len(s.simMIPS) != 2 || s.simMIPS[0] != 12.5 || s.simMIPS[1] != 13.5 {
		t.Fatalf("BenchmarkSimW4 sim-MIPS samples = %v", s.simMIPS)
	}
	if s := got["BenchmarkSimW4"]; len(s.allocs) != 2 || s.allocs[0] != 163 || s.allocs[1] != 165 {
		t.Fatalf("BenchmarkSimW4 allocs/op samples = %v", s.allocs)
	}
	if s := got["BenchmarkSimW8"]; len(s.simMIPS) != 1 || s.simMIPS[0] != 7.25 || len(s.allocs) != 0 {
		t.Fatalf("BenchmarkSimW8 samples = %+v", s)
	}
}

// writeBench drops bench-output text into a temp file.
func writeBench(t *testing.T, name, text string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const benchText = "BenchmarkSimW4-8 10 104042625 ns/op 12.50 sim-MIPS\nPASS\n"

// TestRunCompareMissingBaseline pins the skip contract: a missing
// baseline is not a failure, but it prints an explicit SKIPPED note with
// the re-seed recipe and reports the run as ungated — never a silent
// pass.
func TestRunCompareMissingBaseline(t *testing.T) {
	cur := writeBench(t, "new.txt", benchText)
	var sb strings.Builder
	gated, failed, err := runCompare(&sb, filepath.Join(t.TempDir(), "absent.txt"), cur, 10)
	if err != nil {
		t.Fatal(err)
	}
	if gated || failed {
		t.Fatalf("gated=%v failed=%v, want false/false", gated, failed)
	}
	if out := sb.String(); !strings.Contains(out, "SKIPPED") || !strings.Contains(out, "make bench") {
		t.Fatalf("note must explain the skip and the re-seed recipe:\n%s", out)
	}
}

// TestRunCompareEmptyBaseline: a baseline with no sim-MIPS lines skips
// the same way a missing one does.
func TestRunCompareEmptyBaseline(t *testing.T) {
	base := writeBench(t, "base.txt", "PASS\n")
	cur := writeBench(t, "new.txt", benchText)
	var sb strings.Builder
	gated, failed, err := runCompare(&sb, base, cur, 10)
	if err != nil {
		t.Fatal(err)
	}
	if gated || failed {
		t.Fatalf("gated=%v failed=%v, want false/false", gated, failed)
	}
	if !strings.Contains(sb.String(), "SKIPPED") {
		t.Fatalf("note must explain the skip:\n%s", sb.String())
	}
}

// TestRunCompareBrokenNewSideIsError: the new side is the run under
// test; a missing or metric-free file there must fail loudly.
func TestRunCompareBrokenNewSideIsError(t *testing.T) {
	base := writeBench(t, "base.txt", benchText)
	var sb strings.Builder
	if _, _, err := runCompare(&sb, base, filepath.Join(t.TempDir(), "absent.txt"), 10); err == nil {
		t.Fatal("missing new-side file must error")
	}
	empty := writeBench(t, "empty.txt", "PASS\n")
	if _, _, err := runCompare(&sb, base, empty, 10); err == nil {
		t.Fatal("metric-free new-side file must error")
	}
}

// TestRunCompareGates: a real two-sided comparison still gates.
func TestRunCompareGates(t *testing.T) {
	base := writeBench(t, "base.txt", "BenchmarkSimW4-8 10 1 ns/op 25.00 sim-MIPS\n")
	cur := writeBench(t, "new.txt", benchText) // 12.50: a 50% drop
	var sb strings.Builder
	gated, failed, err := runCompare(&sb, base, cur, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !gated || !failed {
		t.Fatalf("gated=%v failed=%v, want true/true for a 50%% drop", gated, failed)
	}
	sb.Reset()
	gated, failed, err = runCompare(&sb, base, base, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !gated || failed {
		t.Fatalf("gated=%v failed=%v, want true/false for identical runs", gated, failed)
	}
}

func TestAppendTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traj.json")
	cur := map[string]*benchSamples{
		"BenchmarkSimW4": {simMIPS: []float64{10, 12}, allocs: []float64{163, 163}},
	}
	if err := appendTrajectory(path, "rev1", cur); err != nil {
		t.Fatal(err)
	}
	// Appending a second label accumulates; re-recording the first
	// replaces in place rather than duplicating.
	cur["BenchmarkSimW4"].simMIPS = []float64{20}
	if err := appendTrajectory(path, "rev2", cur); err != nil {
		t.Fatal(err)
	}
	if err := appendTrajectory(path, "rev1", cur); err != nil {
		t.Fatal(err)
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tr trajectory
	if err := json.Unmarshal(buf, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Schema != trajectorySchema {
		t.Errorf("schema %q", tr.Schema)
	}
	if len(tr.Entries) != 2 {
		t.Fatalf("want 2 entries (rev1 replaced in place), got %+v", tr.Entries)
	}
	if tr.Entries[0].Label != "rev2" || tr.Entries[1].Label != "rev1" {
		t.Errorf("entry order %q, %q", tr.Entries[0].Label, tr.Entries[1].Label)
	}
	item := tr.Entries[1].Benchmarks["BenchmarkSimW4"]
	if item.SimMIPS != 20 || item.AllocsPerOp != 163 {
		t.Errorf("rev1 item = %+v", item)
	}

	// A schema-mismatched file is an error, not silent clobbering.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendTrajectory(bad, "rev", cur); err == nil {
		t.Error("mismatched schema accepted")
	}
}

// writeTrajectory builds a fixed three-entry trajectory file via the
// same appendTrajectory path -json uses, so the plot test exercises the
// real accumulation format.
func writeTrajectory(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "traj.json")
	steps := []struct {
		label string
		w4    float64
		w8    float64
	}{
		{"rev1", 10, 0}, // SimW8 lands in rev2: plots must tolerate gaps
		{"rev2", 12, 30},
		{"rev3", 11, 45},
	}
	for _, s := range steps {
		cur := map[string]*benchSamples{
			"BenchmarkSimW4": {simMIPS: []float64{s.w4}, allocs: []float64{100}},
		}
		if s.w8 > 0 {
			cur["BenchmarkSimW8"] = &benchSamples{simMIPS: []float64{s.w8}, allocs: []float64{200}}
		}
		if err := appendTrajectory(path, s.label, cur); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

// TestPlotTrajectoryGolden pins the -plot rendering byte-for-byte.
// Regenerate with
//
//	go test ./cmd/benchdiff/ -run TestPlotTrajectoryGolden -update
func TestPlotTrajectoryGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := plotTrajectory(&buf, writeTrajectory(t)); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	for _, want := range []string{
		"3 entries: rev1 rev2 rev3",
		"BenchmarkSimW4",
		"BenchmarkSimW8",
		"n=3", // SimW4 has all three points
		"n=2", // SimW8 joined at rev2
	} {
		if !bytes.Contains(got, []byte(want)) {
			t.Errorf("plot missing %q:\n%s", want, got)
		}
	}

	golden := filepath.Join("testdata", "plot_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("plot drifted from %s (regenerate with -update):\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestPlotTrajectoryErrors: missing files, foreign schemas, and empty
// trajectories are explicit errors, not blank plots.
func TestPlotTrajectoryErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := plotTrajectory(&buf, filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing trajectory accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := plotTrajectory(&buf, bad); err == nil {
		t.Error("mismatched schema accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"schema":"`+trajectorySchema+`"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := plotTrajectory(&buf, empty); err == nil {
		t.Error("entry-free trajectory accepted")
	}
}
