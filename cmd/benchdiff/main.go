// Command benchdiff compares simulator-throughput benchmark runs without
// external tooling. It parses two `go test -bench` output files, extracts
// the sim-MIPS metric each Sim benchmark reports, and compares per-benchmark
// means. A drop larger than -max-regress (default 10%) on any benchmark is
// a regression and exits non-zero — the gate `make bench-diff` applies
// against the committed results/bench_baseline.txt.
//
//	go test -bench Sim -count 5 -run '^$' . | tee new.txt
//	benchdiff results/bench_baseline.txt new.txt
//
// Benchmarks present in only one file are reported as `new` or `removed`
// but never fail the gate: the baseline predates newly added benchmarks,
// and a renamed benchmark should update the baseline, not silently pass —
// only a benchmark measured on both sides can regress.
//
// A baseline file that is missing or has no sim-MIPS lines skips the
// comparison with an explicit note (exit 0, but no "ok" verdict), so a
// fresh checkout can run the gate without pretending it measured
// anything. A broken new-side file is always an error.
//
// With -json (and one input file), benchdiff instead appends a labelled
// entry — per-benchmark mean sim-MIPS and allocs/op — to a trajectory
// file, so `make bench-json` can accumulate a perf history across
// commits:
//
//	go test -bench Sim -count 3 -run '^$' . | benchdiff -json results/bench_trajectory.json -label $(git rev-parse --short HEAD) /dev/stdin
//
// With -plot, benchdiff renders an accumulated trajectory file as one
// labelled sparkline per benchmark — the at-a-glance perf history:
//
//	benchdiff -plot results/bench_trajectory.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"vanguard/internal/textplot"
)

// benchSamples holds one benchmark's per-run metric samples.
type benchSamples struct {
	simMIPS []float64
	allocs  []float64
}

// parseBench reads `go test -bench` output and returns, per benchmark
// name (with the -N GOMAXPROCS suffix stripped), every sim-MIPS and
// allocs/op sample.
func parseBench(path string) (map[string]*benchSamples, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := map[string]*benchSamples{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		// Metrics appear as "<value> <unit>" pairs after the iteration
		// count: custom ones (sim-MIPS) and testing's own (allocs/op).
		var s *benchSamples
		for i := 1; i+1 < len(fields); i++ {
			unit := fields[i+1]
			if unit != "sim-MIPS" && unit != "allocs/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad %s value %q: %v", path, unit, fields[i], err)
			}
			if s == nil {
				if s = out[name]; s == nil {
					s = &benchSamples{}
					out[name] = s
				}
			}
			if unit == "sim-MIPS" {
				s.simMIPS = append(s.simMIPS, v)
			} else {
				s.allocs = append(s.allocs, v)
			}
		}
	}
	// Keep only benchmarks that report sim-MIPS: the gate and the
	// trajectory both track simulator throughput, not arbitrary benches.
	for name, s := range out {
		if len(s.simMIPS) == 0 {
			delete(out, name)
		}
	}
	return out, sc.Err()
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// compare renders the per-benchmark table over the union of both runs'
// names and reports whether any two-sided benchmark dropped more than
// maxRegress percent. One-sided benchmarks print as `new` or `removed`
// and never count as regressions, and a zero baseline mean (a degenerate
// measurement, not a slowdown) is skipped rather than divided by.
func compare(w io.Writer, base, cur map[string]*benchSamples, maxRegress float64) bool {
	names := make([]string, 0, len(base)+len(cur))
	for n := range base {
		names = append(names, n)
	}
	for n := range cur {
		if _, ok := base[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	fmt.Fprintf(w, "%-28s %12s %12s %9s\n", "benchmark", "old sim-MIPS", "new sim-MIPS", "delta")
	failed := false
	for _, n := range names {
		ov, inBase := base[n]
		nv, inCur := cur[n]
		switch {
		case !inCur:
			fmt.Fprintf(w, "%-28s %12.2f %12s %9s\n", n, mean(ov.simMIPS), "-", "removed")
		case !inBase:
			fmt.Fprintf(w, "%-28s %12s %12.2f %9s\n", n, "-", mean(nv.simMIPS), "new")
		default:
			ob, nb := mean(ov.simMIPS), mean(nv.simMIPS)
			if ob == 0 {
				fmt.Fprintf(w, "%-28s %12.2f %12.2f %9s\n", n, ob, nb, "no-base")
				continue
			}
			pct := (nb - ob) / ob * 100
			mark := ""
			if -pct > maxRegress {
				mark = "  REGRESSION"
				failed = true
			}
			fmt.Fprintf(w, "%-28s %12.2f %12.2f %+8.1f%%%s\n", n, ob, nb, pct, mark)
		}
	}
	return failed
}

// runCompare applies the regression gate between two bench output files
// and reports whether a comparison actually happened (gated) and whether
// it failed. A baseline that is missing or contains no sim-MIPS lines is
// not an error — a fresh checkout or a machine change has nothing to gate
// against — but it must not masquerade as a clean pass either: the gate
// prints an explicit note that the comparison was skipped and how to seed
// the baseline, and the caller suppresses the "ok" verdict. A missing or
// empty new-side file is always an error: that is the run under test.
func runCompare(w io.Writer, basePath, curPath string, maxRegress float64) (gated, failed bool, err error) {
	cur, err := parseBench(curPath)
	if err != nil {
		return false, false, err
	}
	if len(cur) == 0 {
		return false, false, fmt.Errorf("%s: no sim-MIPS benchmark lines found", curPath)
	}
	base, err := parseBench(basePath)
	skip := ""
	switch {
	case err != nil && os.IsNotExist(err):
		skip = "not found"
	case err != nil:
		return false, false, err
	case len(base) == 0:
		skip = "has no sim-MIPS benchmark lines"
	}
	if skip != "" {
		fmt.Fprintf(w, "note: baseline %s %s — comparison SKIPPED, nothing was gated.\n", basePath, skip)
		fmt.Fprintf(w, "note: seed it with `make bench` (go test -bench Sim -count 5 -run '^$' . > %s).\n", basePath)
		return false, false, nil
	}
	return true, compare(w, base, cur, maxRegress), nil
}

// Trajectory file shapes (results/bench_trajectory.json).
const trajectorySchema = "vanguard-bench-trajectory/v1"

type trajectory struct {
	Schema  string            `json:"schema"`
	Entries []trajectoryEntry `json:"entries"`
}

type trajectoryEntry struct {
	Label      string                    `json:"label"`
	Benchmarks map[string]trajectoryItem `json:"benchmarks"`
}

type trajectoryItem struct {
	SimMIPS     float64 `json:"sim_mips"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// appendTrajectory loads (or initialises) the trajectory file, replaces
// any existing entry with the same label (re-running a commit updates in
// place rather than duplicating), appends the new entry, and writes the
// file back atomically via a temp-file rename.
func appendTrajectory(path, label string, cur map[string]*benchSamples) error {
	tr := trajectory{Schema: trajectorySchema}
	if buf, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(buf, &tr); err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		if tr.Schema != trajectorySchema {
			return fmt.Errorf("%s: schema %q (want %s)", path, tr.Schema, trajectorySchema)
		}
	} else if !os.IsNotExist(err) {
		return err
	}

	entry := trajectoryEntry{Label: label, Benchmarks: map[string]trajectoryItem{}}
	for name, s := range cur {
		entry.Benchmarks[name] = trajectoryItem{
			SimMIPS:     mean(s.simMIPS),
			AllocsPerOp: mean(s.allocs),
		}
	}
	kept := tr.Entries[:0]
	for _, e := range tr.Entries {
		if e.Label != label {
			kept = append(kept, e)
		}
	}
	tr.Entries = append(kept, entry)

	buf, err := json.MarshalIndent(&tr, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// plotTrajectory renders a trajectory file as one sparkline per
// benchmark over the entries in recorded order, so the sim-MIPS history
// accumulated by `make bench-json` reads at a glance.
func plotTrajectory(w io.Writer, path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tr trajectory
	if err := json.Unmarshal(buf, &tr); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if tr.Schema != trajectorySchema {
		return fmt.Errorf("%s: schema %q (want %s)", path, tr.Schema, trajectorySchema)
	}
	if len(tr.Entries) == 0 {
		return fmt.Errorf("%s: no entries (record some with `make bench-json`)", path)
	}

	labels := make([]string, len(tr.Entries))
	names := map[string]bool{}
	for i, e := range tr.Entries {
		labels[i] = e.Label
		for n := range e.Benchmarks {
			names[n] = true
		}
	}
	sorted := make([]string, 0, len(names))
	wide := 0
	for n := range names {
		sorted = append(sorted, n)
		if len(n) > wide {
			wide = len(n)
		}
	}
	sort.Strings(sorted)

	fmt.Fprintf(w, "sim-MIPS trajectory, %d entries: %s\n", len(tr.Entries), strings.Join(labels, " "))
	for _, n := range sorted {
		// A benchmark absent from an entry (added later, or renamed) just
		// skips that point; the summary's n= count makes the gap visible.
		xs := make([]float64, 0, len(tr.Entries))
		for _, e := range tr.Entries {
			if item, ok := e.Benchmarks[n]; ok {
				xs = append(xs, item.SimMIPS)
			}
		}
		textplot.Spark(w, fmt.Sprintf("  %-*s", wide, n), xs, 60)
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	maxRegress := flag.Float64("max-regress", 10, "maximum tolerated sim-MIPS drop in percent")
	jsonOut := flag.String("json", "", "append a labelled per-benchmark entry (mean sim-MIPS, allocs/op) to this trajectory file instead of diffing; takes one input file")
	label := flag.String("label", "", "entry label for -json (conventionally the short git revision)")
	plot := flag.String("plot", "", "render this trajectory file (see -json) as per-benchmark sim-MIPS sparklines and exit")
	flag.Parse()

	if *plot != "" {
		if err := plotTrajectory(os.Stdout, *plot); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *jsonOut != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: benchdiff -json trajectory.json -label rev new.txt")
			os.Exit(2)
		}
		if *label == "" {
			log.Fatal("-json requires -label")
		}
		cur, err := parseBench(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		if len(cur) == 0 {
			log.Fatalf("%s: no sim-MIPS benchmark lines found", flag.Arg(0))
		}
		if err := appendTrajectory(*jsonOut, *label, cur); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recorded %d benchmark(s) as %q in %s\n", len(cur), *label, *jsonOut)
		return
	}

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-regress pct] baseline.txt new.txt")
		os.Exit(2)
	}
	gated, failed, err := runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), *maxRegress)
	if err != nil {
		log.Fatal(err)
	}
	if failed {
		log.Fatalf("sim-MIPS regression beyond %.0f%% tolerance", *maxRegress)
	}
	if gated {
		fmt.Printf("ok: no benchmark regressed more than %.0f%%\n", *maxRegress)
	}
}
