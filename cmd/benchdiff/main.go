// Command benchdiff compares simulator-throughput benchmark runs without
// external tooling. It parses two `go test -bench` output files, extracts
// the sim-MIPS metric each Sim benchmark reports, and compares per-benchmark
// means. A drop larger than -max-regress (default 10%) on any benchmark is
// a regression and exits non-zero — the gate `make bench-diff` applies
// against the committed results/bench_baseline.txt.
//
//	go test -bench Sim -count 5 -run '^$' . | tee new.txt
//	benchdiff results/bench_baseline.txt new.txt
//
// Benchmarks present in only one file are reported as `new` or `removed`
// but never fail the gate: the baseline predates newly added benchmarks,
// and a renamed benchmark should update the baseline, not silently pass —
// only a benchmark measured on both sides can regress.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// parseBench reads `go test -bench` output and returns, per benchmark
// name (with the -N GOMAXPROCS suffix stripped), every sim-MIPS sample.
func parseBench(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := map[string][]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		// Custom metrics appear as "<value> <unit>" pairs after ns/op.
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] != "sim-MIPS" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad sim-MIPS value %q: %v", path, fields[i], err)
			}
			out[name] = append(out[name], v)
			break
		}
	}
	return out, sc.Err()
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// compare renders the per-benchmark table over the union of both runs'
// names and reports whether any two-sided benchmark dropped more than
// maxRegress percent. One-sided benchmarks print as `new` or `removed`
// and never count as regressions, and a zero baseline mean (a degenerate
// measurement, not a slowdown) is skipped rather than divided by.
func compare(w io.Writer, base, cur map[string][]float64, maxRegress float64) bool {
	names := make([]string, 0, len(base)+len(cur))
	for n := range base {
		names = append(names, n)
	}
	for n := range cur {
		if _, ok := base[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	fmt.Fprintf(w, "%-28s %12s %12s %9s\n", "benchmark", "old sim-MIPS", "new sim-MIPS", "delta")
	failed := false
	for _, n := range names {
		ov, inBase := base[n]
		nv, inCur := cur[n]
		switch {
		case !inCur:
			fmt.Fprintf(w, "%-28s %12.2f %12s %9s\n", n, mean(ov), "-", "removed")
		case !inBase:
			fmt.Fprintf(w, "%-28s %12s %12.2f %9s\n", n, "-", mean(nv), "new")
		default:
			ob, nb := mean(ov), mean(nv)
			if ob == 0 {
				fmt.Fprintf(w, "%-28s %12.2f %12.2f %9s\n", n, ob, nb, "no-base")
				continue
			}
			pct := (nb - ob) / ob * 100
			mark := ""
			if -pct > maxRegress {
				mark = "  REGRESSION"
				failed = true
			}
			fmt.Fprintf(w, "%-28s %12.2f %12.2f %+8.1f%%%s\n", n, ob, nb, pct, mark)
		}
	}
	return failed
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	maxRegress := flag.Float64("max-regress", 10, "maximum tolerated sim-MIPS drop in percent")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-regress pct] baseline.txt new.txt")
		os.Exit(2)
	}
	base, err := parseBench(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	cur, err := parseBench(flag.Arg(1))
	if err != nil {
		log.Fatal(err)
	}
	if len(base) == 0 {
		log.Fatalf("%s: no sim-MIPS benchmark lines found", flag.Arg(0))
	}
	if len(cur) == 0 {
		log.Fatalf("%s: no sim-MIPS benchmark lines found", flag.Arg(1))
	}

	if compare(os.Stdout, base, cur, *maxRegress) {
		log.Fatalf("sim-MIPS regression beyond %.0f%% tolerance", *maxRegress)
	}
	fmt.Printf("ok: no benchmark regressed more than %.0f%%\n", *maxRegress)
}
