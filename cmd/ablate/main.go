// Command ablate runs the design-choice ablations DESIGN.md calls out:
// the 5% selection threshold, the hoisting depth, the 16-entry DBB, and
// the condition-slice push-down.
//
//	ablate -sweep gap|hoist|dbb|slice|all [-fast]
package main

import (
	"flag"
	"log"
	"os"

	"vanguard/internal/harness"
	"vanguard/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ablate: ")
	sweep := flag.String("sweep", "all", "gap | hoist | dbb | slice | all")
	fast := flag.Bool("fast", false, "reduced inputs")
	flag.Parse()

	o := harness.DefaultOptions()
	if *fast {
		o.TrainInput = workload.Input{Seed: 101, Iters: 800}
		o.RefInputs = []workload.Input{{Seed: 202, Iters: 1000}}
	}
	names := harness.AblationBenchmarks()

	run := func(kind string) {
		switch kind {
		case "gap":
			pts, err := harness.SweepMinGap(names, o, []float64{0, 0.02, 0.05, 0.10, 0.20})
			if err != nil {
				log.Fatal(err)
			}
			harness.WriteAblation(os.Stdout,
				"Selection threshold sweep (paper: predictability-bias >= 5% is best)", pts)
		case "hoist":
			pts, err := harness.SweepMaxHoist(names, o, []int{0, 2, 4, 8, 12, 16})
			if err != nil {
				log.Fatal(err)
			}
			harness.WriteAblation(os.Stdout, "Hoist depth sweep", pts)
		case "dbb":
			pts, err := harness.SweepDBBSize(names, o, []int{2, 4, 8, 16, 32})
			if err != nil {
				log.Fatal(err)
			}
			harness.WriteAblation(os.Stdout,
				"DBB size sweep (paper: 16 entries more than sufficient)", pts)
		case "slice":
			pts, err := harness.SlicePushdownAblation(names, o)
			if err != nil {
				log.Fatal(err)
			}
			harness.WriteAblation(os.Stdout, "Condition-slice push-down ablation", pts)
		default:
			log.Fatalf("unknown sweep %q", kind)
		}
	}
	if *sweep == "all" {
		for _, k := range []string{"gap", "hoist", "dbb", "slice"} {
			run(k)
		}
		return
	}
	run(*sweep)
}
