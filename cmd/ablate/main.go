// Command ablate runs the design-choice ablations DESIGN.md calls out:
// the 5% selection threshold, the hoisting depth, the 16-entry DBB, and
// the condition-slice push-down. Every sweep's full (point x benchmark)
// matrix executes on the experiment engine's worker pool.
//
//	ablate -sweep gap|hoist|dbb|slice|all [-fast] [-jobs N] [-json out.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vanguard/internal/engine"
	"vanguard/internal/exec"
	"vanguard/internal/harness"
	"vanguard/internal/pipeline"
	"vanguard/internal/trace"
	"vanguard/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ablate: ")
	var (
		sweep    = flag.String("sweep", "all", "gap | hoist | dbb | slice | all")
		fast     = flag.Bool("fast", false, "reduced inputs")
		attrF    = flag.Bool("attr", false, "attribute every issue slot to a cause on every simulation (feeds the monitor's /metrics per-cause counters)")
		bpredRep = flag.Bool("bpred-report", false, "probe the predictor on every simulation and print the ablation benchmarks' table-level studies")
		bpredCSV = flag.String("bpred-csv", "", "probe the predictor on every simulation and write the ablation benchmarks' per-branch classifications as CSV to this file")
		jsonF    = flag.String("json", "", "also write the sweeps as a structured telemetry report to this file")
		dispatch = flag.String("dispatch", "kernels", "instruction dispatch engine: kernels (per-PC compiled at load) or switch (reference exec.Step); results are byte-identical")
		jobs     = flag.Int("jobs", 0, "simulation worker pool size (0 = GOMAXPROCS)")
		lanes    = flag.Int("lanes", 0, fmt.Sprintf("max same-image simulations stepped as one lane group (0 = auto, %d; 1 = scalar); results are byte-identical at any value", pipeline.DefaultLanes))
		cacheDir = flag.String("cache-dir", engine.DefaultDir(), "on-disk run cache directory")
		noCache  = flag.Bool("no-cache", false, "disable the on-disk run cache")
		progress = flag.Bool("progress", false, "render a live engine status line on stderr")
		listen   = flag.String("listen", "", "serve live progress over HTTP on this address (e.g. :0): /progress JSON, /metrics Prometheus text, /debug/sweep dashboard, /healthz, /debug/pprof")
		sweepOut = flag.String("sweep-trace", "", "record the engine flight recording (one span per unit lifecycle phase) and write it as a "+trace.SweepSchema+" JSON artifact to this file; -json reports gain a sweep section (schema "+trace.SchemaV5+")")
		sweepChr = flag.String("sweep-chrome", "", "record the engine flight recording and write it as a Chrome trace_event timeline (one track per worker) to this file")
	)
	flag.Parse()

	o := harness.DefaultOptions()
	if *fast {
		o = harness.FastOptions()
		o.RefInputs = o.RefInputs[:1]
	}
	disp, err := exec.ParseDispatch(*dispatch)
	if err != nil {
		log.Fatal(err)
	}
	es := &harness.EngineStats{}
	o.Jobs = *jobs
	o.Lanes = *lanes
	o.EngineStats = es
	o.Attr = *attrF
	o.Probe = *bpredRep || *bpredCSV != ""
	o.Dispatch = disp
	if !*noCache && *cacheDir != "" {
		c, err := engine.Open(*cacheDir)
		if err != nil {
			log.Printf("warning: run cache disabled: %v", err)
		} else {
			o.Cache = c
		}
	}
	if *progress || *listen != "" {
		o.Monitor = engine.NewMonitor()
		if *listen != "" {
			addr, closeSrv, err := o.Monitor.Serve(*listen)
			if err != nil {
				log.Fatalf("listen: %v", err)
			}
			defer closeSrv()
			log.Printf("monitor listening on http://%s (/progress, /metrics, /debug/sweep, /debug/bpred, /healthz, /debug/pprof)", addr)
		}
		if *progress {
			stop := o.Monitor.StartStatus(os.Stderr, 0)
			defer stop()
		}
	}
	if *sweepOut != "" || *sweepChr != "" {
		o.Recorder = engine.NewSweepRecorder()
	}
	names := harness.AblationBenchmarks()

	titles := map[string]string{
		"gap":   "Selection threshold sweep (paper: predictability-bias >= 5% is best)",
		"hoist": "Hoist depth sweep",
		"dbb":   "DBB size sweep (paper: 16 entries more than sufficient)",
		"slice": "Condition-slice push-down ablation",
	}
	sweeps := map[string][]harness.AblationPoint{}
	var order []string

	run := func(kind string) {
		var pts []harness.AblationPoint
		var err error
		switch kind {
		case "gap":
			pts, err = harness.SweepMinGap(names, o, []float64{0, 0.02, 0.05, 0.10, 0.20})
		case "hoist":
			pts, err = harness.SweepMaxHoist(names, o, []int{0, 2, 4, 8, 12, 16})
		case "dbb":
			pts, err = harness.SweepDBBSize(names, o, []int{2, 4, 8, 16, 32})
		case "slice":
			pts, err = harness.SlicePushdownAblation(names, o)
		default:
			log.Fatalf("unknown sweep %q", kind)
		}
		if err != nil {
			log.Fatal(err)
		}
		harness.WriteAblation(os.Stdout, titles[kind], pts)
		sweeps[titles[kind]] = pts
		order = append(order, titles[kind])
	}
	if *sweep == "all" {
		for _, k := range []string{"gap", "hoist", "dbb", "slice"} {
			run(k)
		}
	} else {
		run(*sweep)
	}
	if o.Probe {
		// The sweeps above reduce to speedup points; the observatory needs
		// the full Stats, so probe the ablation benchmark set directly (one
		// engine job set — the run cache makes repeats cheap).
		var cs []workload.Config
		for _, n := range names {
			c, ok := workload.ByName(n)
			if !ok {
				log.Fatalf("unknown ablation benchmark %q", n)
			}
			cs = append(cs, c)
		}
		rs, err := harness.RunBenchmarks(cs, o)
		if err != nil {
			log.Fatal(err)
		}
		if *bpredRep {
			fmt.Println("\nPredictor observatory (ablation benchmarks, first REF input):")
			for _, r := range rs {
				wr := r.Inputs[0].Runs[0]
				for _, cand := range r.Inputs[0].Runs {
					if cand.Width == 4 {
						wr = cand
					}
				}
				if wr.Base.Bpred == nil || wr.Exp.Bpred == nil {
					continue
				}
				fmt.Println()
				harness.WriteBpredStudy(os.Stdout, fmt.Sprintf("%s/base w%d", r.Config.Name, wr.Width), wr.Base.Bpred, 5)
				harness.WriteBpredStudy(os.Stdout, fmt.Sprintf("%s/exp w%d", r.Config.Name, wr.Width), wr.Exp.Bpred, 5)
			}
		}
		if *bpredCSV != "" {
			f, err := os.Create(*bpredCSV)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := harness.WriteBpredCSV(f, rs); err != nil {
				f.Close()
				log.Fatalf("%s: %v", *bpredCSV, err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s", *bpredCSV)
		}
	}
	if *jsonF != "" {
		rep := harness.AblationJSON("ablate", sweeps, order)
		rep.Engine = es.Report()
		if o.Recorder != nil {
			rep.Sweep = o.Recorder.Report()
		}
		if err := rep.WriteFile(*jsonF); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *jsonF)
	}
	if _, err := harness.WriteSweepArtifacts(o.Recorder, *sweepOut, *sweepChr, o.Cache); err != nil {
		log.Fatal(err)
	}
	if *sweepOut != "" {
		log.Printf("wrote %s", *sweepOut)
	}
	if *sweepChr != "" {
		log.Printf("wrote %s (load in chrome://tracing or ui.perfetto.dev)", *sweepChr)
	}
	log.Printf("engine: %s", es.Summary())
}
