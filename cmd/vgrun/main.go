// Command vgrun assembles a vanguard assembly file and runs it — on the
// golden-model interpreter, on the Table 1 cycle-level machine, or both —
// optionally applying the Decomposed Branch Transformation first.
//
//	vgrun prog.s                      # interpret + simulate, print stats
//	vgrun -width 8 prog.s             # 8-wide machine
//	vgrun -transform prog.s           # profile, decompose, then simulate
//	vgrun -dump -transform prog.s     # print the transformed assembly
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vanguard/internal/asm"
	"vanguard/internal/core"
	"vanguard/internal/interp"
	"vanguard/internal/ir"
	"vanguard/internal/mem"
	"vanguard/internal/pipeline"
	"vanguard/internal/profile"
	"vanguard/internal/sched"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vgrun: ")
	var (
		width     = flag.Int("width", 4, "issue width")
		transform = flag.Bool("transform", false, "apply the decomposed branch transformation (profile-guided)")
		dump      = flag.Bool("dump", false, "print the (possibly transformed) assembly and exit")
		maxInstrs = flag.Int64("max-instrs", 50_000_000, "functional instruction cap")
		trace     = flag.Bool("trace", false, "print per-instruction issue/mispredict events from the timing run")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: vgrun [flags] prog.s")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	p, err := asm.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}

	if *transform {
		prof, err := profile.CollectDefault(ir.MustLinearize(p), mem.New(), *maxInstrs)
		if err != nil {
			log.Fatalf("profile: %v", err)
		}
		rep, err := core.Transform(p, prof, core.DefaultOptions())
		if err != nil {
			log.Fatalf("transform: %v", err)
		}
		fmt.Fprintf(os.Stderr, "converted %d branch(es), code size %+.1f%%\n",
			len(rep.Converted), rep.PISCS())
		sched.Program(p, sched.DefaultModel(*width))
	}
	if *dump {
		fmt.Print(asm.Format(p))
		return
	}

	im := ir.MustLinearize(p)
	gm := mem.New()
	gst, fstats, err := interp.Run(im, gm, interp.Options{MaxInstrs: *maxInstrs})
	if err != nil {
		log.Fatalf("interpret: %v", err)
	}
	fmt.Printf("functional: %d instructions, %d branches (%d taken), halted=%v\n",
		fstats.Instrs, fstats.Branches, fstats.Taken, gst.Halted)

	mach := pipeline.New(im, mem.New(), pipeline.DefaultConfig(*width))
	if *trace {
		mach.Trace = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	st, err := mach.Run()
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}
	if !mach.Memory().Equal(gm) {
		log.Fatal("timing simulation diverged from the golden model")
	}
	fmt.Printf("timing:     %d cycles, IPC %.3f, %d issued (%d wrong-path), MPKI %.2f\n",
		st.Cycles, st.IPC(), st.Issued, st.WrongPathIssued, st.MPKI())
	if st.Predicts > 0 {
		fmt.Printf("decomposed: %d predicts, %d resolves, %d repairs, DBB high-water %d\n",
			st.Predicts, st.Resolves, st.ResMispredicts, st.MaxDBBOccupancy)
	}
}
