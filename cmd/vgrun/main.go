// Command vgrun assembles a vanguard assembly file and runs it — on the
// golden-model interpreter, on the Table 1 cycle-level machine, or both —
// optionally applying the Decomposed Branch Transformation first.
//
//	vgrun prog.s                      # interpret + simulate, print stats
//	vgrun -width 8 prog.s             # 8-wide machine
//	vgrun -transform prog.s           # profile, decompose, then simulate
//	vgrun -dump -transform prog.s     # print the transformed assembly
//	vgrun -json out.json prog.s       # machine-readable telemetry report
//	vgrun -chrome-trace t.json prog.s # timeline for chrome://tracing / Perfetto
//
// The timing run executes as an experiment-engine unit, so repeated
// invocations on an unchanged program are served from the content-keyed
// run cache (-cache-dir, -no-cache); event tracing flags force a live
// run. If the timing run halts on a deferred architectural fault, vgrun
// exits non-zero after dumping the last pipeline lifecycle events leading
// up to the fault (an always-on bounded ring buffer records them).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"vanguard/internal/asm"
	"vanguard/internal/core"
	"vanguard/internal/engine"
	"vanguard/internal/exec"
	"vanguard/internal/harness"
	"vanguard/internal/interp"
	"vanguard/internal/ir"
	"vanguard/internal/mem"
	"vanguard/internal/pipeline"
	"vanguard/internal/pipeview"
	"vanguard/internal/profile"
	"vanguard/internal/sample"
	"vanguard/internal/sched"
	"vanguard/internal/textplot"
	"vanguard/internal/trace"
	"vanguard/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vgrun: ")
	var (
		width     = flag.Int("width", 4, "issue width")
		transform = flag.Bool("transform", false, "apply the decomposed branch transformation (profile-guided)")
		dump      = flag.Bool("dump", false, "print the (possibly transformed) assembly and exit")
		maxInstrs = flag.Int64("max-instrs", 50_000_000, "functional instruction cap")
		doTrace   = flag.Bool("trace", false, "print issue/mispredict events from the timing run (historical line format)")
		traceAll  = flag.Bool("trace-all", false, "like -trace, but print every lifecycle event (fetch, commit, squash, DBB push/pop, cache misses, faults)")
		jsonOut   = flag.String("json", "", "write a machine-readable telemetry report (schema "+trace.Schema+"; "+trace.SchemaV2+" when sampling is on, "+trace.SchemaV3+" with -attr, "+trace.SchemaV4+" with -pipeview, "+trace.SchemaV5+" with -sweep-trace, "+trace.SchemaV6+" with -bpred-report) to this file")
		chromeOut = flag.String("chrome-trace", "", "write a Chrome trace_event timeline (open in chrome://tracing or ui.perfetto.dev) to this file")
		noHists   = flag.Bool("no-hists", false, "suppress the ASCII histograms in the text report")
		sampleWin = flag.Int64("sample-window", 0, fmt.Sprintf("record a counter time series every N cycles (0 disables; the conventional window is %d)", sample.DefaultWindow))
		attrOn    = flag.Bool("attr", false, "charge every issue slot to a cause: print the CPI stack and offender tables, add an attribution section to -json reports")
		pviewOn   = flag.Bool("pipeview", false, "record per-instruction pipeline lifetimes: print an ASCII waterfall and squash genealogy, add a pipeview section to -json reports (schema "+trace.SchemaV4+")")
		konataOut = flag.String("konata", "", "write the captured lifetimes in Konata/O3PipeView format (open in the Konata viewer) to this file; implies -pipeview")
		pvAround  = flag.Int("pipeview-around", 0, "capture around the Nth squash/misprediction instead of the run's tail (implies -pipeview)")
		pvFrom    = flag.Int64("pipeview-from", 0, "with -pipeview-to: capture the explicit cycle range [from, to) (implies -pipeview)")
		pvTo      = flag.Int64("pipeview-to", 0, "see -pipeview-from")
		pvEvery   = flag.Int64("pipeview-every", 0, "capture one burst of records at the start of every N-cycle window (implies -pipeview)")
		attrDiff  = flag.Bool("attr-diff", false, "profile, decompose, and simulate the baseline and vanguard binaries with attribution on; print the CPI-stack delta and per-branch recovery table, then exit")
		attrCSV   = flag.String("attr-csv", "", "with -attr-diff: also write PREFIX.cpistack.csv and PREFIX.branches.csv")
		bpredOn   = flag.Bool("bpred-report", false, "probe the direction predictor: print the table-level study and per-branch predictability classes, add a bpredstudy section to -json reports (schema "+trace.SchemaV6+")")
		bpredCSV  = flag.String("bpred-csv", "", "write the probed run's per-branch classification as CSV to this file (implies -bpred-report)")
		dispatch  = flag.String("dispatch", "kernels", "instruction dispatch engine: kernels (per-PC compiled at load) or switch (reference exec.Step); results are byte-identical")
		jobs      = flag.Int("jobs", 0, "simulation worker pool size (0 = GOMAXPROCS)")
		lanes     = flag.Int("lanes", 0, fmt.Sprintf("max same-image simulations stepped as one lane group (0 = auto, %d; 1 = scalar); vgrun's units are single runs over distinct binaries, so they always take the scalar fallback — the flag exists for parity with spec/ablate", pipeline.DefaultLanes))
		cacheDir  = flag.String("cache-dir", engine.DefaultDir(), "on-disk run cache directory")
		noCache   = flag.Bool("no-cache", false, "disable the on-disk run cache")
		progress  = flag.Bool("progress", false, "render a live engine status line on stderr")
		listen    = flag.String("listen", "", "serve live progress over HTTP on this address (e.g. :0): /progress JSON, /metrics Prometheus text, /debug/sweep and /debug/bpred dashboards, /healthz, /debug/pprof")
		sweepOut  = flag.String("sweep-trace", "", "record the engine flight recording (one span per unit lifecycle phase) and write it as a "+trace.SweepSchema+" JSON artifact to this file")
		sweepChr  = flag.String("sweep-chrome", "", "record the engine flight recording and write it as a Chrome trace_event timeline (one track per worker; open in chrome://tracing or ui.perfetto.dev) to this file")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to a file")
		memProf   = flag.String("memprofile", "", "write a heap profile to a file on exit")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: vgrun [flags] prog.s")
	}
	if *attrDiff && *transform {
		log.Fatal("-attr-diff builds both binaries itself; drop -transform")
	}
	disp, err := exec.ParseDispatch(*dispatch)
	if err != nil {
		log.Fatal(err)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	p, err := asm.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}

	var rep *core.Report
	if *transform {
		prof, err := profile.CollectDefault(ir.MustLinearize(p), mem.New(), *maxInstrs)
		if err != nil {
			log.Fatalf("profile: %v", err)
		}
		rep, err = core.Transform(p, prof, core.DefaultOptions())
		if err != nil {
			log.Fatalf("transform: %v", err)
		}
		fmt.Fprintf(os.Stderr, "converted %d branch(es), code size %+.1f%%\n",
			len(rep.Converted), rep.PISCS())
		sched.Program(p, sched.DefaultModel(*width))
	}
	if *dump {
		fmt.Print(asm.Format(p))
		return
	}

	im := ir.MustLinearize(p)
	gm := mem.New()
	gst, fstats, err := interp.Run(im, gm, interp.Options{MaxInstrs: *maxInstrs, Dispatch: disp})
	if err != nil {
		log.Fatalf("interpret: %v", err)
	}
	fmt.Printf("functional: %d instructions, %d branches (%d taken), halted=%v\n",
		fstats.Instrs, fstats.Branches, fstats.Taken, gst.Halted)

	var cache *engine.Cache
	if !*noCache && *cacheDir != "" {
		if c, err := engine.Open(*cacheDir); err != nil {
			log.Printf("warning: run cache disabled: %v", err)
		} else {
			cache = c
		}
	}
	var mon *engine.Monitor
	if *progress || *listen != "" {
		mon = engine.NewMonitor()
		if *listen != "" {
			addr, closeSrv, err := mon.Serve(*listen)
			if err != nil {
				log.Fatalf("listen: %v", err)
			}
			defer closeSrv()
			fmt.Fprintf(os.Stderr, "monitor listening on http://%s (/progress, /metrics, /debug/sweep, /healthz, /debug/pprof)\n", addr)
		}
	}
	var recorder *engine.SweepRecorder
	if *sweepOut != "" || *sweepChr != "" {
		recorder = engine.NewSweepRecorder()
	}
	var stopStatus func()
	if *progress {
		stopStatus = mon.StartStatus(os.Stderr, 0)
	}

	if *attrDiff {
		runAttrDiff(p, im, gm, src, cache, mon, recorder, stopStatus, *width, *maxInstrs, *jobs, *lanes, disp, *attrCSV, *sweepOut, *sweepChr)
		return
	}
	// Event tracing needs a live machine, so those runs bypass the cache
	// (as do profiled runs — a cache hit would profile nothing); cache
	// hits skip the memory cross-check (the run was verified when its
	// result was computed and stored).
	tracing := *doTrace || *traceAll || *chromeOut != "" || *cpuProf != ""

	// Pipeview capture rides inside Stats, so pipeviewed runs stay
	// cacheable: the waterfall, genealogy and Konata renderings below all
	// work from the cached report.
	var pvCfg *pipeview.Config
	if *pviewOn || *konataOut != "" || *pvAround > 0 || *pvTo > 0 || *pvEvery > 0 {
		c := pipeview.DefaultConfig()
		c.AroundSquash = *pvAround
		c.From, c.To = *pvFrom, *pvTo
		c.EveryWindow = *pvEvery
		pvCfg = &c
	}
	// The predictor observatory rides inside Stats like pipeview, so
	// probed runs stay cacheable too.
	probeOn := *bpredOn || *bpredCSV != ""
	// v4: the dispatch engine joined the key — kernels and switch are
	// byte-identical, but the namespace moves with the simulator core.
	// v5: the probe joined the key, so probed runs (whose Stats carry a
	// bpredstudy) never alias plain entries.
	key := ""
	if !tracing {
		key = engine.Key("vgrun/v5", string(src), *width, *transform, *maxInstrs, *sampleWin, *attrOn, pvCfg, disp.String(), probeOn)
	}

	runTiming := func(context.Context) (*pipeline.Stats, error) {
		cfg := pipeline.DefaultConfig(*width)
		cfg.SampleWindow = *sampleWin
		cfg.Attr = *attrOn
		cfg.Pipeview = pvCfg
		cfg.Dispatch = disp
		cfg.Probe = probeOn
		mach := pipeline.New(im, mem.New(), cfg)

		// An always-on bounded ring keeps the most recent lifecycle events
		// so a failing run can explain itself post mortem.
		ring := trace.NewRing(64)
		sinks := []trace.Sink{ring}
		if *doTrace || *traceAll {
			sinks = append(sinks, &trace.Text{W: os.Stderr, All: *traceAll})
		}
		var chrome *trace.Chrome
		if *chromeOut != "" {
			f, err := os.Create(*chromeOut)
			if err != nil {
				return nil, err
			}
			chrome = trace.NewChrome(f)
			sinks = append(sinks, chrome)
		}
		mach.Sink = trace.Tee(sinks...)

		st, simErr := mach.Run()
		if chrome != nil {
			if err := chrome.Close(); err != nil {
				return nil, fmt.Errorf("chrome trace: %w", err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (load in chrome://tracing or ui.perfetto.dev)\n", *chromeOut)
		}
		if simErr != nil {
			fmt.Fprintf(os.Stderr, "last %d pipeline events before the failure:\n", ring.Len())
			trace.WriteEvents(os.Stderr, ring.Events())
			return nil, simErr
		}
		if !mach.Memory().Equal(gm) {
			return nil, fmt.Errorf("timing simulation diverged from the golden model")
		}
		return st, nil
	}

	results, est, err := engine.Run(context.Background(),
		engine.Config{Jobs: *jobs, Cache: cache, Monitor: mon, Lanes: *lanes, Recorder: recorder},
		[]engine.Unit[*pipeline.Stats]{{Label: "timing/" + flag.Arg(0), Key: key, Run: runTiming}})
	if stopStatus != nil {
		stopStatus()
	}
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}
	sweep, err := harness.WriteSweepArtifacts(recorder, *sweepOut, *sweepChr, cache)
	if err != nil {
		log.Fatal(err)
	}
	if *sweepOut != "" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", *sweepOut)
	}
	if *sweepChr != "" {
		fmt.Fprintf(os.Stderr, "wrote %s (load in chrome://tracing or ui.perfetto.dev)\n", *sweepChr)
	}
	st := results[0]
	if est.Units[0].CacheHit {
		fmt.Fprintf(os.Stderr, "timing run served from the run cache (%s)\n", cache.Dir())
	}
	if mon != nil && st.Attr != nil {
		mon.ObserveAttr(st.Attr.Slots)
	}
	if mon != nil && st.Bpred != nil {
		mon.ObserveBpred(st.Bpred)
	}
	fmt.Printf("timing:     %d cycles, IPC %.3f, %d issued (%d wrong-path), MPKI %.2f\n",
		st.Cycles, st.IPC(), st.Issued, st.WrongPathIssued, st.MPKI())
	if st.Predicts > 0 {
		fmt.Printf("decomposed: %d predicts, %d resolves, %d repairs, DBB high-water %d\n",
			st.Predicts, st.Resolves, st.ResMispredicts, st.MaxDBBOccupancy)
	}
	if !*noHists {
		fmt.Println()
		textplot.Hist(os.Stdout, "fetch-to-issue latency (cycles)", &st.FetchToIssue, 40)
		textplot.Hist(os.Stdout, "misprediction repair penalty (cycles)", &st.RepairPenalty, 40)
		if st.Predicts > 0 {
			textplot.Hist(os.Stdout, "DBB occupancy (outstanding predicts)", &st.DBBOccupancy, 40)
			textplot.Hist(os.Stdout, "resolve stall run length (cycles)", &st.StallRunResolve, 40)
		}
		textplot.Hist(os.Stdout, "branch stall run length (cycles)", &st.StallRunBranch, 40)
		textplot.Hist(os.Stdout, "empty-fetch stall run length (cycles)", &st.StallRunEmpty, 40)
	}
	if sr := st.Samples; sr != nil && len(sr.Windows) > 0 {
		fmt.Printf("\ntime series (%d windows of %d cycles", len(sr.Windows), sr.WindowCycles)
		if sr.Dropped > 0 {
			fmt.Printf(", %d oldest dropped", sr.Dropped)
		}
		fmt.Println("):")
		textplot.Spark(os.Stdout, "  ipc          ", sr.Values(func(w *sample.Window) float64 { return w.IPC() }), 60)
		textplot.Spark(os.Stdout, "  mispredicts  ", sr.Values(func(w *sample.Window) float64 { return float64(w.Mispredicts()) }), 60)
		if st.Predicts > 0 {
			textplot.Spark(os.Stdout, "  resolves     ", sr.Values(func(w *sample.Window) float64 { return float64(w.Resolves) }), 60)
			textplot.Spark(os.Stdout, "  dbb high-water", sr.Values(func(w *sample.Window) float64 { return float64(w.DBBHighWater) }), 60)
		}
		textplot.Spark(os.Stdout, "  l1d misses   ", sr.Values(func(w *sample.Window) float64 { return float64(w.L1DMisses) }), 60)
		textplot.Spark(os.Stdout, "  stall cycles ", sr.Values(func(w *sample.Window) float64 {
			return float64(w.StallEmpty + w.StallOperand + w.StallBranch + w.StallResolve + w.StallFU)
		}), 60)
	}

	if st.Attr != nil {
		fmt.Println()
		harness.WriteAttrReport(os.Stdout, "cycle attribution (cycles by cause)", st.Attr, 10)
	}

	if st.Bpred != nil {
		if err := st.Bpred.CheckAgainst(st.CondBranches+st.Resolves, st.BrMispredicts+st.ResMispredicts); err != nil {
			log.Fatalf("predictor study conservation: %v", err)
		}
		fmt.Println()
		harness.WriteBpredStudy(os.Stdout, "predictor study", st.Bpred, 10)
		if *bpredCSV != "" {
			f, err := os.Create(*bpredCSV)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := harness.WriteBpredStudyCSV(f, flag.Arg(0), workload.Input{}, *width, "timing", st.Bpred); err != nil {
				f.Close()
				log.Fatalf("%s: %v", *bpredCSV, err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *bpredCSV)
		}
	}

	if pv := st.Pipeview; pv != nil {
		fmt.Println()
		title := fmt.Sprintf("pipeline waterfall (%s trigger)", pv.Trigger)
		textplot.Waterfall(os.Stdout, title, pv, 64)
		fmt.Println()
		pipeview.WriteGenealogy(os.Stdout, pv, st.Attr)
		if *konataOut != "" {
			if err := pipeview.WriteKonataFile(*konataOut, pv); err != nil {
				log.Fatalf("konata: %v", err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (open in the Konata pipeline viewer)\n", *konataOut)
		}
	}

	if *jsonOut != "" {
		report := trace.NewReport("vgrun")
		bench := &trace.BenchReport{Name: flag.Arg(0)}
		if rep != nil {
			bench.Transform = rep.Telemetry()
		}
		bench.Runs = append(bench.Runs, st.RunReport("timing", *width))
		report.Benchmarks = append(report.Benchmarks, bench)
		report.Engine = &trace.EngineReport{
			Jobs:        est.Jobs,
			Units:       len(est.Units),
			CacheHits:   est.CacheHits,
			CacheMisses: est.CacheMisses,
			WallMS:      est.Wall.Seconds() * 1000,
		}
		report.Sweep = sweep
		if err := report.WriteFile(*jsonOut); err != nil {
			log.Fatalf("json report: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
}

// runAttrDiff is the -attr-diff path: build the vanguard binary from the
// parsed (untransformed) program, simulate both binaries with cycle
// attribution on as engine units (cached, monitored), and render the
// differential — which causes shrank, and which branches paid off.
func runAttrDiff(p *ir.Program, baseIm *ir.Image, gm *mem.Memory, src []byte,
	cache *engine.Cache, mon *engine.Monitor, recorder *engine.SweepRecorder, stopStatus func(),
	width int, maxInstrs int64, jobs, lanes int, disp exec.Dispatch, csvPrefix, sweepOut, sweepChr string) {
	prof, err := profile.CollectDefault(baseIm, mem.New(), maxInstrs)
	if err != nil {
		log.Fatalf("profile: %v", err)
	}
	expProg := p.Clone()
	rep, err := core.Transform(expProg, prof, core.DefaultOptions())
	if err != nil {
		log.Fatalf("transform: %v", err)
	}
	sched.Program(expProg, sched.DefaultModel(width))
	expIm := ir.MustLinearize(expProg)

	sim := func(im *ir.Image, binary string) engine.Unit[*pipeline.Stats] {
		return engine.Unit[*pipeline.Stats]{
			Label: binary + "/" + flag.Arg(0),
			Key:   engine.Key("vgrun-attrdiff/v2", string(src), width, maxInstrs, binary, disp.String()),
			Run: func(context.Context) (*pipeline.Stats, error) {
				cfg := pipeline.DefaultConfig(width)
				cfg.Attr = true
				cfg.Dispatch = disp
				mach := pipeline.New(im, mem.New(), cfg)
				st, err := mach.Run()
				if err != nil {
					return nil, err
				}
				if !mach.Memory().Equal(gm) {
					return nil, fmt.Errorf("%s binary diverged from the golden model", binary)
				}
				return st, nil
			},
		}
	}
	results, _, err := engine.Run(context.Background(),
		engine.Config{Jobs: jobs, Cache: cache, Monitor: mon, Lanes: lanes, Recorder: recorder},
		[]engine.Unit[*pipeline.Stats]{sim(baseIm, "base"), sim(expIm, "exp")})
	if stopStatus != nil {
		stopStatus()
	}
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}
	if _, err := harness.WriteSweepArtifacts(recorder, sweepOut, sweepChr, cache); err != nil {
		log.Fatal(err)
	}
	d := &harness.AttrDiff{
		Benchmark: flag.Arg(0), Width: width,
		Base: results[0].Attr, Exp: results[1].Attr,
		Profile: prof, Transform: rep,
	}
	if mon != nil {
		mon.ObserveAttr(d.Base.Slots)
		mon.ObserveAttr(d.Exp.Slots)
	}
	fmt.Printf("converted %d branch(es), code size %+.1f%%\n\n", len(rep.Converted), rep.PISCS())
	harness.WriteAttrDiff(os.Stdout, d, 10)
	if csvPrefix != "" {
		for _, out := range []struct {
			suffix string
			write  func(io.Writer, *harness.AttrDiff) (int, error)
		}{
			{".cpistack.csv", harness.WriteCPIStackCSV},
			{".branches.csv", harness.WriteBranchDeltaCSV},
		} {
			path := csvPrefix + out.suffix
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := out.write(f, d); err != nil {
				f.Close()
				log.Fatalf("%s: %v", path, err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
}
