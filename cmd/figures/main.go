// Command figures regenerates the characterization figures and the
// predictor-sensitivity study:
//
//	figures -fig 2            predictability vs bias, SPEC 2006 Integer
//	figures -fig 3            predictability vs bias, SPEC 2006 FP
//	figures -sensitivity      Section 5.3 predictor ladder on the four
//	                          hard-to-predict integer benchmarks
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vanguard/internal/harness"
	"vanguard/internal/textplot"
	"vanguard/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var (
		fig         = flag.Int("fig", 0, "figure to regenerate (2 or 3)")
		sensitivity = flag.Bool("sensitivity", false, "run the Section 5.3 predictor ladder")
		fast        = flag.Bool("fast", false, "reduced inputs (quick smoke run)")
		plot        = flag.Bool("plot", false, "render ASCII charts instead of tables")
	)
	flag.Parse()

	in := workload.TrainInput()
	o := harness.DefaultOptions()
	if *fast {
		in.Iters = 1200
		o.TrainInput = workload.Input{Seed: 101, Iters: 800}
		o.RefInputs = []workload.Input{{Seed: 202, Iters: 1000}}
		o.Widths = []int{4}
	}

	switch {
	case *fig == 2 || *fig == 3:
		suite, title := "int2006", "Figure 2: predictability vs bias, top forward branches, SPEC 2006 Int"
		if *fig == 3 {
			suite, title = "fp2006", "Figure 3: predictability vs bias, top forward branches, SPEC 2006 FP"
		}
		cur, err := harness.BiasPredictabilityCurve(suite, in)
		if err != nil {
			log.Fatal(err)
		}
		if *plot {
			textplot.Series(os.Stdout, title, [2]string{"bias", "predictability"},
				[2][]float64{cur.Bias, cur.Predictability}, 75, 18)
		} else {
			cur.Write(os.Stdout, title)
		}
	case *sensitivity:
		rows, err := harness.Sensitivity(harness.SensitivityBenchmarks(), o)
		if err != nil {
			log.Fatal(err)
		}
		harness.WriteSensitivity(os.Stdout, rows)
	default:
		flag.Usage()
		fmt.Fprintln(os.Stderr, "need -fig 2, -fig 3, or -sensitivity")
		os.Exit(2)
	}
}
