// Command figures regenerates the characterization figures and the
// predictor-sensitivity study:
//
//	figures -fig 2            predictability vs bias, SPEC 2006 Integer
//	figures -fig 3            predictability vs bias, SPEC 2006 FP
//	figures -sensitivity      Section 5.3 predictor ladder on the four
//	                          hard-to-predict integer benchmarks
//
// Profiling and simulation run on the experiment engine (-jobs bounds the
// worker pool; -cache-dir/-no-cache control the on-disk run cache).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vanguard/internal/engine"
	"vanguard/internal/harness"
	"vanguard/internal/textplot"
	"vanguard/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var (
		fig         = flag.Int("fig", 0, "figure to regenerate (2 or 3)")
		sensitivity = flag.Bool("sensitivity", false, "run the Section 5.3 predictor ladder")
		fast        = flag.Bool("fast", false, "reduced inputs (quick smoke run)")
		plot        = flag.Bool("plot", false, "render ASCII charts instead of tables")
		jobs        = flag.Int("jobs", 0, "simulation worker pool size (0 = GOMAXPROCS)")
		cacheDir    = flag.String("cache-dir", engine.DefaultDir(), "on-disk run cache directory")
		noCache     = flag.Bool("no-cache", false, "disable the on-disk run cache")
	)
	flag.Parse()

	in := workload.TrainInput()
	o := harness.DefaultOptions()
	if *fast {
		in.Iters = 1200
		o = harness.FastOptions()
		o.RefInputs = o.RefInputs[:1]
		o.Widths = []int{4}
	}
	es := &harness.EngineStats{}
	o.Jobs = *jobs
	o.EngineStats = es
	if !*noCache && *cacheDir != "" {
		c, err := engine.Open(*cacheDir)
		if err != nil {
			log.Printf("warning: run cache disabled: %v", err)
		} else {
			o.Cache = c
		}
	}

	switch {
	case *fig == 2 || *fig == 3:
		suite, title := "int2006", "Figure 2: predictability vs bias, top forward branches, SPEC 2006 Int"
		if *fig == 3 {
			suite, title = "fp2006", "Figure 3: predictability vs bias, top forward branches, SPEC 2006 FP"
		}
		cur, err := harness.BiasPredictabilityCurveOpts(suite, in, o)
		if err != nil {
			log.Fatal(err)
		}
		if *plot {
			textplot.Series(os.Stdout, title, [2]string{"bias", "predictability"},
				[2][]float64{cur.Bias, cur.Predictability}, 75, 18)
		} else {
			cur.Write(os.Stdout, title)
		}
	case *sensitivity:
		rows, err := harness.Sensitivity(harness.SensitivityBenchmarks(), o)
		if err != nil {
			log.Fatal(err)
		}
		harness.WriteSensitivity(os.Stdout, rows)
	default:
		flag.Usage()
		fmt.Fprintln(os.Stderr, "need -fig 2, -fig 3, or -sensitivity")
		os.Exit(2)
	}
	log.Printf("engine: %s", es.Summary())
}
