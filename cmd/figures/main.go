// Command figures regenerates the characterization figures and the
// predictor-sensitivity study:
//
//	figures -fig 2            predictability vs bias, SPEC 2006 Integer
//	figures -fig 3            predictability vs bias, SPEC 2006 FP
//	figures -sensitivity      Section 5.3 predictor ladder on the four
//	                          hard-to-predict integer benchmarks
//	figures -cpistack mcf     baseline-vs-vanguard CPI stack with per-branch
//	                          delta attribution for one benchmark
//
// Profiling and simulation run on the experiment engine (-jobs bounds the
// worker pool; -cache-dir/-no-cache control the on-disk run cache).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vanguard/internal/engine"
	"vanguard/internal/harness"
	"vanguard/internal/sample"
	"vanguard/internal/textplot"
	"vanguard/internal/trace"
	"vanguard/internal/workload"
)

// dumpSamples renders the samples sections of a telemetry report: CSV on
// stdout by default (one row per window, see harness.WriteSamplesCSV),
// or per-run sparklines with -plot.
func dumpSamples(path string, plot bool) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	rep, err := trace.ReadReport(f)
	if err != nil {
		log.Fatal(err)
	}
	if !plot {
		rows, err := harness.WriteSamplesCSV(os.Stdout, rep)
		if err != nil {
			log.Fatal(err)
		}
		if rows == 0 {
			log.Fatalf("%s has no samples sections (re-run the producing tool with -sample-window)", path)
		}
		log.Printf("%d window rows", rows)
		return
	}
	plotted := 0
	for _, b := range rep.Benchmarks {
		for _, run := range b.Runs {
			sr := run.Samples
			if sr == nil || len(sr.Windows) == 0 {
				continue
			}
			name := b.Name
			if run.Label != "" {
				name += "/" + run.Label
			}
			if run.Input != "" {
				name += "/" + run.Input
			}
			fmt.Printf("%s w%d (%d windows of %d cycles):\n", name, run.Width, len(sr.Windows), sr.WindowCycles)
			textplot.Spark(os.Stdout, "  ipc        ", sr.Values(func(w *sample.Window) float64 { return w.IPC() }), 60)
			textplot.Spark(os.Stdout, "  mispredicts", sr.Values(func(w *sample.Window) float64 { return float64(w.Mispredicts()) }), 60)
			textplot.Spark(os.Stdout, "  l1d misses ", sr.Values(func(w *sample.Window) float64 { return float64(w.L1DMisses) }), 60)
			plotted++
		}
	}
	if plotted == 0 {
		log.Fatalf("%s has no samples sections (re-run the producing tool with -sample-window)", path)
	}
}

// writeAttrCSV exports a differential attribution's stacked-CPI and
// per-branch delta tables as PREFIX.cpistack.csv and PREFIX.branches.csv.
func writeAttrCSV(prefix string, d *harness.AttrDiff) {
	writeCSVFile(prefix+".cpistack.csv", func(f *os.File) (int, error) { return harness.WriteCPIStackCSV(f, d) })
	writeCSVFile(prefix+".branches.csv", func(f *os.File) (int, error) { return harness.WriteBranchDeltaCSV(f, d) })
}

// writeBpredCSV exports a predictor differential's classification ×
// conversion join and both binaries' per-branch studies.
func writeBpredCSV(prefix string, d *harness.BpredDiff) {
	writeCSVFile(prefix+".bpredjoin.csv", func(f *os.File) (int, error) { return harness.WriteBpredJoinCSV(f, d) })
	writeCSVFile(prefix+".bpredstudy.csv", func(f *os.File) (int, error) {
		n, err := harness.WriteBpredStudyCSV(f, d.Benchmark, d.Input, d.Width, "base", d.Base)
		if err != nil {
			return n, err
		}
		m, err := harness.WriteBpredStudyCSV(f, d.Benchmark, d.Input, d.Width, "exp", d.Exp)
		return n + m, err
	})
}

// writeCSVFile creates path, runs fn on it, and logs the row count.
func writeCSVFile(path string, fn func(*os.File) (int, error)) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := fn(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d rows)", path, rows)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var (
		fig         = flag.Int("fig", 0, "figure to regenerate (2 or 3)")
		sensitivity = flag.Bool("sensitivity", false, "run the Section 5.3 predictor ladder")
		samples     = flag.String("samples", "", "dump the samples sections of a telemetry report (vgrun/spec -json -sample-window output) as CSV on stdout; with -plot, render sparklines instead")
		cpistack    = flag.String("cpistack", "", "render the baseline-vs-vanguard CPI stack and per-branch delta attribution for this benchmark")
		width       = flag.Int("width", 4, "issue width for -cpistack")
		attrCSV     = flag.String("attr-csv", "", "with -cpistack, also write PREFIX.cpistack.csv and PREFIX.branches.csv using this path prefix")
		bpredRep    = flag.Bool("bpred-report", false, "with -cpistack: also probe both binaries' predictors and render the classification x conversion join (which converted branches were unpredictable vs merely mispredicted)")
		bpredCSV    = flag.String("bpred-csv", "", "with -cpistack: write the classification x conversion join as PREFIX.bpredjoin.csv and the per-branch studies as PREFIX.bpredstudy.csv (implies -bpred-report)")
		fast        = flag.Bool("fast", false, "reduced inputs (quick smoke run)")
		plot        = flag.Bool("plot", false, "render ASCII charts instead of tables")
		jobs        = flag.Int("jobs", 0, "simulation worker pool size (0 = GOMAXPROCS)")
		cacheDir    = flag.String("cache-dir", engine.DefaultDir(), "on-disk run cache directory")
		noCache     = flag.Bool("no-cache", false, "disable the on-disk run cache")
		progress    = flag.Bool("progress", false, "render a live engine status line on stderr")
		listen      = flag.String("listen", "", "serve live progress over HTTP on this address (e.g. :0): /progress JSON, /metrics Prometheus text, /debug/sweep dashboard, /healthz, /debug/pprof")
		sweepOut    = flag.String("sweep-trace", "", "record the engine flight recording (one span per unit lifecycle phase) and write it as a "+trace.SweepSchema+" JSON artifact to this file")
		sweepChr    = flag.String("sweep-chrome", "", "record the engine flight recording and write it as a Chrome trace_event timeline (one track per worker) to this file")
	)
	flag.Parse()

	if *samples != "" {
		dumpSamples(*samples, *plot)
		return
	}

	in := workload.TrainInput()
	o := harness.DefaultOptions()
	if *fast {
		in.Iters = 1200
		o = harness.FastOptions()
		o.RefInputs = o.RefInputs[:1]
		o.Widths = []int{4}
	}
	es := &harness.EngineStats{}
	o.Jobs = *jobs
	o.EngineStats = es
	if !*noCache && *cacheDir != "" {
		c, err := engine.Open(*cacheDir)
		if err != nil {
			log.Printf("warning: run cache disabled: %v", err)
		} else {
			o.Cache = c
		}
	}
	if *progress || *listen != "" {
		o.Monitor = engine.NewMonitor()
		if *listen != "" {
			addr, closeSrv, err := o.Monitor.Serve(*listen)
			if err != nil {
				log.Fatalf("listen: %v", err)
			}
			defer closeSrv()
			log.Printf("monitor listening on http://%s (/progress, /metrics, /debug/sweep, /debug/bpred, /healthz, /debug/pprof)", addr)
		}
		if *progress {
			stop := o.Monitor.StartStatus(os.Stderr, 0)
			defer stop()
		}
	}
	if *sweepOut != "" || *sweepChr != "" {
		o.Recorder = engine.NewSweepRecorder()
	}

	switch {
	case *fig == 2 || *fig == 3:
		suite, title := "int2006", "Figure 2: predictability vs bias, top forward branches, SPEC 2006 Int"
		if *fig == 3 {
			suite, title = "fp2006", "Figure 3: predictability vs bias, top forward branches, SPEC 2006 FP"
		}
		cur, err := harness.BiasPredictabilityCurveOpts(suite, in, o)
		if err != nil {
			log.Fatal(err)
		}
		if *plot {
			textplot.Series(os.Stdout, title, [2]string{"bias", "predictability"},
				[2][]float64{cur.Bias, cur.Predictability}, 75, 18)
		} else {
			cur.Write(os.Stdout, title)
		}
	case *cpistack != "":
		c, ok := workload.ByName(*cpistack)
		if !ok {
			log.Fatalf("unknown benchmark %q", *cpistack)
		}
		if *bpredRep || *bpredCSV != "" {
			// The joined run: probe + attribution on the same simulations,
			// so the CPI deltas and the predictability classes line up.
			bd, err := harness.RunBpredDiff(c, o, *width)
			if err != nil {
				log.Fatal(err)
			}
			harness.WriteAttrDiff(os.Stdout, bd.Attr, 10)
			fmt.Println()
			harness.WriteBpredReport(os.Stdout, bd, 10)
			if *attrCSV != "" {
				writeAttrCSV(*attrCSV, bd.Attr)
			}
			if *bpredCSV != "" {
				writeBpredCSV(*bpredCSV, bd)
			}
			break
		}
		d, err := harness.RunAttrDiff(c, o, *width)
		if err != nil {
			log.Fatal(err)
		}
		harness.WriteAttrDiff(os.Stdout, d, 10)
		if *attrCSV != "" {
			writeAttrCSV(*attrCSV, d)
		}
	case *sensitivity:
		rows, err := harness.Sensitivity(harness.SensitivityBenchmarks(), o)
		if err != nil {
			log.Fatal(err)
		}
		harness.WriteSensitivity(os.Stdout, rows)
	default:
		flag.Usage()
		fmt.Fprintln(os.Stderr, "need -fig 2, -fig 3, -cpistack BENCH, or -sensitivity")
		os.Exit(2)
	}
	if _, err := harness.WriteSweepArtifacts(o.Recorder, *sweepOut, *sweepChr, o.Cache); err != nil {
		log.Fatal(err)
	}
	if *sweepOut != "" {
		log.Printf("wrote %s", *sweepOut)
	}
	if *sweepChr != "" {
		log.Printf("wrote %s (load in chrome://tracing or ui.perfetto.dev)", *sweepChr)
	}
	log.Printf("engine: %s", es.Summary())
}
