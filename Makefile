# Developer entry points. `make check` is the pre-PR gate referenced in
# README.md: formatting, vet, a full build, and the race-enabled test
# suite must all pass before a change ships.

GO ?= go

.PHONY: all build test check fmt vet race bench bench-all bench-diff bench-json results attr-gate staticcheck pipeview-gate lane-gate kernel-gate sweep-gate bpred-gate

# Pinned staticcheck version: `go run` resolves it through the module
# proxy, so the exact analyzer version is reproducible everywhere.
STATICCHECK_VERSION ?= 2025.1.1

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Pinned static analysis. Offline-gated: `go run pkg@version` must
# download the tool, so when the module proxy is unreachable (air-gapped
# build hosts) the target skips with a notice instead of failing the gate
# on a network error. Resolution is probed under both a cleared GOFLAGS
# and GOFLAGS=-mod=mod (some hosts need the explicit module mode to
# resolve pkg@version); only when the analyzer actually ran can the gate
# fail, and only on findings.
staticcheck:
	@if GOFLAGS= $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./... 2>/dev/null; then \
		echo "staticcheck: ok"; \
	elif GOFLAGS= $(GO) list -m honnef.co/go/tools@$(STATICCHECK_VERSION) >/dev/null 2>&1; then \
		GOFLAGS= $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	elif GOFLAGS=-mod=mod $(GO) list -m honnef.co/go/tools@$(STATICCHECK_VERSION) >/dev/null 2>&1; then \
		GOFLAGS=-mod=mod $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./... \
			&& echo "staticcheck: ok (via GOFLAGS=-mod=mod)"; \
	else \
		echo "staticcheck: module proxy unreachable under GOFLAGS= and GOFLAGS=-mod=mod, skipping (offline)"; \
	fi

# Lane-core gate: the lanes=1-vs-W differentials — pipeline.LaneGroup
# against scalar Machines, and the harness lane scheduler against the
# scalar suite — plus the attribution and pipeview observer gates, all
# under the race detector and uncached, so lane batching can never
# silently share mutable state across lanes or change a single byte of
# results or telemetry.
lane-gate:
	$(GO) test -race -count 1 \
		-run 'TestLaneGroup|TestLanesDifferential|TestRunBatched|TestAttr|TestRunAttrDiff|TestPipeview|TestLifecycle|TestKonata|TestWaterfall' \
		./internal/pipeline/ ./internal/harness/ ./internal/engine/ \
		./internal/pipeview/ ./internal/textplot/ ./internal/trace/

# Kernel-dispatch gate: the switch-vs-kernels differentials — the
# per-opcode exec property fuzz, the pipeline stats/memory A/B, the
# functional simulator A/B (including adversarial PREDICT oracles and
# instruction-cap straddling), and the end-to-end harness byte-identity
# at lanes 1 and auto — under the race detector and uncached, so the
# predecoded kernel table can never change a result byte or be shared
# unsafely across lanes.
kernel-gate:
	$(GO) test -race -count 1 \
		-run 'TestKernel|TestDispatch|TestInterpDispatch|TestCompileRejects|TestStepUnknown|TestDivRem|TestFus' \
		./internal/exec/ ./internal/pipeline/ ./internal/interp/ ./internal/harness/

# Sweep flight-recorder gate: an uncached end-to-end benchmark run with
# the recorder attached must satisfy the span conservation invariant
# (exactly one terminal per unit, phases nested, counters reconciled),
# the recorder-off path must stay byte-identical and allocation-free,
# and the monitor surface (/metrics exposition, /debug/sweep, the
# concurrency hammer) must hold up — all under the race detector.
sweep-gate:
	$(GO) test -race -count 1 \
		-run 'TestSweep|TestRecorder|TestMonitor|TestMetricsPromFormat|TestPromValidator|TestReportSchemaV5|TestWriteSweepArtifacts' \
		./internal/engine/ ./internal/harness/ ./internal/trace/

# Predictor-observatory gate: the probe's conservation invariant (every
# resolve lands in exactly one provider/class bucket) on unit traces and
# on a real benchmark end to end, probe-off byte-identity and zero
# steady-state allocations, the v6 telemetry round-trip, the reflection
# audit of the run-cache key against harness.Options/pipeline.Config,
# and the monitor's /metrics + /debug/bpred surface — all under the race
# detector and uncached.
bpred-gate:
	$(GO) test -race -count 1 \
		-run 'TestProbe|TestHist|TestCtr2|TestBpredProbe|TestReportSchemaV6|TestSchemaConstants|TestRunBpredDiff|TestWriteBpredCSV|TestRunCacheKey|TestSimKeySeparates|TestMonitorBpred' \
		./internal/bpred/ ./internal/pipeline/ ./internal/trace/ \
		./internal/harness/ ./internal/engine/

# Pre-PR gate: run this before every commit.
check: fmt vet build staticcheck lane-gate kernel-gate sweep-gate bpred-gate race

# Attribution-conservation gate: every attributed fast-suite simulation
# must charge exactly cycles x width issue slots (pipeline invariant
# sweeps), match the aggregate counters per static branch, and leave
# attribution-off runs byte-identical; the differential path must hold
# the same books on both binaries of a real benchmark.
attr-gate:
	$(GO) test -run 'TestAttr|TestRunAttrDiff' -count 1 ./internal/pipeline/ ./internal/harness/

# Simulator-throughput benchmarks (simulated MIPS + allocation counts),
# benchstat-friendly: five samples per benchmark, compare against the
# committed results/bench_baseline.txt with
#   make bench | tee new.txt && benchstat results/bench_baseline.txt new.txt
bench:
	$(GO) test -bench Sim -benchmem -count 5 -run '^$$' .

# Quick smoke pass over every table/figure benchmark.
bench-all:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Throughput-regression gate: rerun the Sim benchmarks and compare the
# per-benchmark mean sim-MIPS against the committed baseline with the
# in-tree comparator (no benchstat dependency). Fails on a >10% drop.
bench-diff:
	$(GO) test -bench Sim -benchmem -count 3 -run '^$$' . | tee results/.bench_new.txt
	$(GO) run ./cmd/benchdiff results/bench_baseline.txt results/.bench_new.txt
	@rm -f results/.bench_new.txt

# Perf-trajectory bookkeeping: rerun the Sim benchmarks and append the
# per-benchmark mean sim-MIPS and allocs/op to results/bench_trajectory.json
# under the current short revision, so throughput history accumulates
# commit by commit (re-running a commit updates its entry in place).
bench-json:
	$(GO) test -bench Sim -benchmem -count 3 -run '^$$' . | tee results/.bench_new.txt
	$(GO) run ./cmd/benchdiff -json results/bench_trajectory.json \
		-label "$$(git rev-parse --short HEAD)" results/.bench_new.txt
	@rm -f results/.bench_new.txt

# Pipeview gate: the lifetime-capture invariants (every fetched
# instruction reaches exactly one terminal, stage cycles are monotonic),
# the off-path byte-identity contract, and the golden Konata/waterfall
# renderings, uncached.
pipeview-gate:
	$(GO) test -run 'TestPipeview|TestLifecycle|TestKonata|TestWaterfall' -count 1 \
		./internal/pipeline/ ./internal/pipeview/ ./internal/textplot/ ./internal/trace/

# Regenerate the committed telemetry baselines under results/ through the
# experiment engine, then fail if they drifted from the committed files.
# Wall-clock lines (the report's only nondeterministic field) are excluded
# from the comparison; -no-cache keeps the hit/miss counters at zero so the
# engine section itself is reproducible. On drift, the regenerated files
# replace the stale baselines so they can be reviewed and committed.
results: build vet
	@drift=0; \
	for w in 2 4 8; do \
		$(GO) run ./cmd/vgrun -no-hists -no-cache -width $$w \
			-json results/.regen_w$$w.json -transform examples/asm/dotproduct.s >/dev/null || exit 1; \
		if ! diff -u -I '"wall_ms"' results/dotproduct_w$$w.json results/.regen_w$$w.json; then \
			drift=1; \
		fi; \
		mv results/.regen_w$$w.json results/dotproduct_w$$w.json; \
	done; \
	if [ $$drift -ne 0 ]; then \
		echo "results: baselines drifted from committed files (regenerated copies left in place)"; \
		exit 1; \
	fi; \
	echo "results: baselines regenerated through the engine, no drift"
