# Developer entry points. `make check` is the pre-PR gate referenced in
# README.md: formatting, vet, a full build, and the race-enabled test
# suite must all pass before a change ships.

GO ?= go

.PHONY: all build test check fmt vet race bench results

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Pre-PR gate: run this before every commit.
check: fmt vet build race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Regenerate the committed telemetry baselines under results/.
results: build
	$(GO) run ./cmd/vgrun -no-hists -width 2 -json results/dotproduct_w2.json -transform examples/asm/dotproduct.s
	$(GO) run ./cmd/vgrun -no-hists -width 4 -json results/dotproduct_w4.json -transform examples/asm/dotproduct.s
	$(GO) run ./cmd/vgrun -no-hists -width 8 -json results/dotproduct_w8.json -transform examples/asm/dotproduct.s
